package serve

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
	"mdabt/internal/machine"
	"mdabt/internal/mem"
	"mdabt/internal/workload"
)

// chaosSeed pins the whole suite: the same fault schedules replay on
// every run (and in CI's serve-chaos job).
const chaosSeed = 20260806

// chaosProgram is one guest program of the chaos mix.
type chaosProgram struct {
	name string
	load func(m *mem.Memory) uint32
	opt  core.Options
}

func asmProgram(t *testing.T, src string) func(m *mem.Memory) uint32 {
	t.Helper()
	img, err := guestasm.Assemble(src, guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	return func(m *mem.Memory) uint32 {
		m.WriteBytes(guest.CodeBase, img)
		m.WriteBytes(guest.DataBase, data)
		return guest.CodeBase
	}
}

const mdaLoopSrc = `
        mov     ebx, 0x10000000
        mov     ecx, 0
        mov     eax, 0
loop:   mov     edx, dword [ebx+2]
        add     eax, edx
        movzx   esi, word [ebx+7]
        add     eax, esi
        add     ecx, 1
        cmp     ecx, 400
        jl      loop
        halt
`

const mixedSrc = `
        mov     ebx, 0x10000000
        mov     ecx, 0
        mov     eax, 0
outer:  mov     edx, dword [ebx]
        add     eax, edx
        mov     edx, dword [ebx+6]
        add     eax, edx
        mov     dword [ebx+10], eax
        add     ecx, 1
        cmp     ecx, 350
        jl      outer
        halt
`

// chaosPrograms builds the program × mechanism mix the chaos requests
// cycle through: hand-written loops plus generated SPEC workload models.
func chaosPrograms(t *testing.T) []chaosProgram {
	t.Helper()
	dpeh := core.DefaultOptions(core.DPEH)
	dpeh.HeatThreshold = 3
	dpeh.Retranslate = true
	dpeh.RetransThreshold = 2
	dynp := core.DefaultOptions(core.DynamicProfile)
	dynp.HeatThreshold = 3

	progs := []chaosProgram{
		{"asm-mdaloop|eh", asmProgram(t, mdaLoopSrc), core.DefaultOptions(core.ExceptionHandling)},
		{"asm-mdaloop|direct", asmProgram(t, mdaLoopSrc), core.DefaultOptions(core.Direct)},
		{"asm-mixed|dpeh", asmProgram(t, mixedSrc), dpeh},
		{"asm-mixed|dynprof", asmProgram(t, mixedSrc), dynp},
	}
	for _, name := range []string{"164.gzip", "429.mcf"} {
		spec, ok := workload.SpecByName(name)
		if !ok {
			t.Fatalf("unknown benchmark %s", name)
		}
		spec.PaperMDAs /= 100
		spec.IterFloor = 300
		prog, err := workload.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		progs = append(progs, chaosProgram{
			name: "bench-" + name + "|eh",
			load: func(m *mem.Memory) uint32 { prog.Load(m, workload.Ref); return prog.Entry() },
			opt:  core.DefaultOptions(core.ExceptionHandling),
		})
	}
	return progs
}

// chaosEnginePlan returns the per-request engine fault parent: every
// engine- and machine-level injection point armed.
func chaosEnginePlan() *faultinject.Plan {
	p := faultinject.New(chaosSeed)
	for _, pt := range []faultinject.Point{
		faultinject.AllocBlock, faultinject.AllocStub, faultinject.Translate,
		faultinject.PatchRange, faultinject.ForcedFlush,
		faultinject.SpuriousTrap, faultinject.DuplicateTrap,
		faultinject.SpuriousAccessFault,
	} {
		p.Rate(pt, 0.02)
	}
	// Guarantee early occurrences regardless of how short a run is.
	p.At(faultinject.Translate, 1)
	p.At(faultinject.ForcedFlush, 2)
	p.At(faultinject.SpuriousAccessFault, 3)
	return p
}

// serialBaseline replays request i on a dedicated fresh system with an
// identically-forked fault plan and returns its result fingerprint.
func serialBaseline(t *testing.T, progs []chaosProgram, i int) string {
	t.Helper()
	p := progs[i%len(progs)]
	opt := p.opt
	opt.FaultPlan = chaosEnginePlan().Fork(i)
	m := mem.New()
	mach := machine.New(m, machine.DefaultParams())
	e := core.NewEngine(m, mach, opt)
	entry := p.load(m)
	if err := e.RunContext(context.Background(), entry, 500_000_000); err != nil {
		t.Fatalf("serial baseline %d (%s): %v", i, p.name, err)
	}
	return fmt.Sprintf("cpu=%+v counters=%+v stats=%+v", e.FinalCPU(), mach.Counters(), e.Stats())
}

// TestChaosPoolMatchesSerial is the headline chaos acceptance test: ≥8
// concurrent sessions hammer the server while faults fire at every
// defined injection point — engine faults from per-request forked plans,
// serving faults (transient failures, worker panics) from per-worker
// forks. Every request must get a classified response (zero lost, zero
// escaped panics), and every completed request's guest CPU state, machine
// counters, and engine statistics must be bit-identical to a serial
// replay of the same request on a dedicated fresh engine.
func TestChaosPoolMatchesSerial(t *testing.T) {
	const sessions = 8
	perSession := 12
	if testing.Short() {
		perSession = 3 // still 8 concurrent sessions, smaller batches
	}
	numRequests := sessions * perSession
	progs := chaosPrograms(t)

	serveChaos := faultinject.New(chaosSeed+1).
		Rate(faultinject.ServeTransient, 0.20).
		Rate(faultinject.ServePanic, 0.06).
		At(faultinject.ServeTransient, 2).
		At(faultinject.ServePanic, 4)

	srv := NewServer(ServerOptions{
		Pool: Options{
			Workers: 8, Queue: 16, Retries: 2,
			RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond,
			BreakerThreshold: -1, // breaker behaviour is pinned in pool_test
			Chaos:            serveChaos,
			Seed:             chaosSeed,
		},
		Budget: 500_000_000,
	})
	defer srv.Close()

	// Build every request up front so the engine fault-plan forks are
	// indexed identically to the serial baseline.
	plans := make([]*faultinject.Plan, numRequests)
	reqs := make([]Request, numRequests)
	engineParent := chaosEnginePlan()
	for i := range reqs {
		p := progs[i%len(progs)]
		opt := p.opt
		plans[i] = engineParent.Fork(i)
		opt.FaultPlan = plans[i]
		reqs[i] = Request{Load: p.load, Options: &opt}
	}

	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, numRequests)
	responded := make([]bool, numRequests)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perSession; k++ {
				i := s*perSession + k
				res, err := srv.Do(context.Background(), reqs[i])
				outcomes[i] = outcome{res, err}
				responded[i] = true
			}
		}(s)
	}
	wg.Wait()

	completed := 0
	for i, o := range outcomes {
		if !responded[i] {
			t.Fatalf("request %d lost: no response", i)
		}
		if o.err != nil {
			// Failures must be the injected kinds, classified.
			switch {
			case core.IsInternal(o.err) && strings.Contains(o.err.Error(), "injected panic"):
			case core.IsTransient(o.err) && strings.Contains(o.err.Error(), "injected transient"):
			default:
				t.Errorf("request %d: unexpected failure %v", i, o.err)
			}
			continue
		}
		completed++
		if want := serialBaseline(t, progs, i); fingerprintOf(o.res) != want {
			t.Errorf("request %d (%s): pooled result diverged from serial replay\n pooled %s\n serial %s",
				i, progs[i%len(progs)].name, fingerprintOf(o.res), want)
		}
	}
	if completed < numRequests/2 {
		t.Errorf("only %d/%d requests completed; chaos rates drowned the suite", completed, numRequests)
	}

	// Every defined injection point fired somewhere in the run: the seven
	// engine/machine points across the per-request plans, the two serving
	// points visible through pool health (each transient fire causes a
	// retry or a transient failure; each panic is recovered and counted).
	fired := make(map[faultinject.Point]uint64)
	for _, pl := range plans {
		for pt, n := range pl.Counts() {
			fired[pt] += n
		}
	}
	for _, pt := range []faultinject.Point{
		faultinject.AllocBlock, faultinject.AllocStub, faultinject.Translate,
		faultinject.PatchRange, faultinject.ForcedFlush,
		faultinject.SpuriousTrap, faultinject.DuplicateTrap,
		faultinject.SpuriousAccessFault,
	} {
		if fired[pt] == 0 {
			t.Errorf("engine point %s never fired", pt)
		}
	}
	h := srv.Health()
	if h.Retries == 0 {
		t.Error("serve.transient never fired (no retries recorded)")
	}
	if h.Panics == 0 {
		t.Error("serve.worker-panic never fired (no recovered panics)")
	}
	if h.Submitted != uint64(numRequests) {
		t.Errorf("health.Submitted = %d, want %d", h.Submitted, numRequests)
	}
	if h.Completed+h.Failed != uint64(numRequests) {
		t.Errorf("health: completed %d + failed %d != %d", h.Completed, h.Failed, numRequests)
	}
	t.Logf("chaos: %d/%d completed, %d retries, %d recovered panics, engine faults %v",
		completed, numRequests, h.Retries, h.Panics, fired)
}

func fingerprintOf(r *Result) string {
	return fmt.Sprintf("cpu=%+v counters=%+v stats=%+v", r.CPU, r.Counters, r.Stats)
}

// faultEnginePlan is the engine fault parent for the guest-fault serve
// suite: a thinner mix than chaosEnginePlan (the fault workloads are
// longer-running), with guaranteed spurious access faults so the
// protection-trap disambiguation path fires alongside real guest faults.
func faultEnginePlan() *faultinject.Plan {
	p := faultinject.New(chaosSeed + 3)
	for _, pt := range []faultinject.Point{
		faultinject.Translate, faultinject.ForcedFlush,
		faultinject.SpuriousTrap, faultinject.DuplicateTrap,
		faultinject.SpuriousAccessFault,
	} {
		p.Rate(pt, 0.01)
	}
	p.At(faultinject.SpuriousAccessFault, 2, 6)
	return p
}

// TestServeGuestFaults drives the guest-fault workload set (page-straddling
// MDA against protected/unmapped pages, the self-modifying rewriter)
// through the pooled serving layer under serve- and engine-level chaos.
// Every request gets a response; a faulting guest surfaces as a Permanent
// classified error carrying the precise guest PC and fault address —
// identical to a dedicated serial engine's — and never as an Internal
// error or an escaped panic. Success-expected programs must produce
// fingerprints bit-identical to serial replays on the recycled engines.
func TestServeGuestFaults(t *testing.T) {
	fps, err := workload.FaultPrograms()
	if err != nil {
		t.Fatal(err)
	}
	type mech struct {
		name string
		opt  core.Options
	}
	dpeh := core.DefaultOptions(core.DPEH)
	dpeh.HeatThreshold = 3
	mechs := []mech{
		{"eh", core.DefaultOptions(core.ExceptionHandling)},
		{"direct", core.DefaultOptions(core.Direct)},
		{"dpeh", dpeh},
	}
	type fcase struct {
		name string
		prog *workload.FaultProgram
		opt  core.Options
	}
	var cases []fcase
	for _, p := range fps {
		for _, m := range mechs {
			cases = append(cases, fcase{p.Name + "|" + m.name, p, m.opt})
		}
	}

	const sessions = 6
	perSession := 8
	if testing.Short() {
		perSession = 2
	}
	numRequests := sessions * perSession

	serveChaos := faultinject.New(chaosSeed+2).
		Rate(faultinject.ServeTransient, 0.15).
		Rate(faultinject.ServePanic, 0.05).
		At(faultinject.ServeTransient, 1).
		At(faultinject.ServePanic, 3)

	srv := NewServer(ServerOptions{
		Pool: Options{
			Workers: 6, Queue: 16, Retries: 2,
			RetryBase: 100 * time.Microsecond, RetryCap: time.Millisecond,
			BreakerThreshold: -1,
			Chaos:            serveChaos,
			Seed:             chaosSeed + 2,
		},
		Budget: 500_000_000,
	})
	defer srv.Close()

	parent := faultEnginePlan()
	reqs := make([]Request, numRequests)
	for i := range reqs {
		c := cases[i%len(cases)]
		opt := c.opt
		opt.FaultPlan = parent.Fork(i)
		p := c.prog
		reqs[i] = Request{
			Load:    func(m *mem.Memory) uint32 { p.Load(m); return p.Entry() },
			Options: &opt,
		}
	}

	// serial replays request i on a dedicated fresh engine with an
	// identically-forked fault plan.
	serial := func(i int) (string, *guest.Fault, error) {
		c := cases[i%len(cases)]
		opt := c.opt
		opt.FaultPlan = faultEnginePlan().Fork(i)
		m := mem.New()
		mach := machine.New(m, machine.DefaultParams())
		e := core.NewEngine(m, mach, opt)
		c.prog.Load(m)
		rerr := e.RunContext(context.Background(), c.prog.Entry(), 500_000_000)
		fp := fmt.Sprintf("cpu=%+v counters=%+v stats=%+v", e.FinalCPU(), mach.Counters(), e.Stats())
		gf, _ := core.AsGuestFault(rerr)
		return fp, gf, rerr
	}

	type outcome struct {
		res *Result
		err error
	}
	outcomes := make([]outcome, numRequests)
	responded := make([]bool, numRequests)
	var wg sync.WaitGroup
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perSession; k++ {
				i := s*perSession + k
				res, err := srv.Do(context.Background(), reqs[i])
				outcomes[i] = outcome{res, err}
				responded[i] = true
			}
		}(s)
	}
	wg.Wait()

	faulted, completed := 0, 0
	for i, o := range outcomes {
		if !responded[i] {
			t.Fatalf("request %d lost: no response", i)
		}
		c := cases[i%len(cases)]
		label := fmt.Sprintf("request %d (%s)", i, c.name)
		if o.err != nil {
			switch {
			case core.IsInternal(o.err) && strings.Contains(o.err.Error(), "injected panic"):
				continue
			case core.IsTransient(o.err) && strings.Contains(o.err.Error(), "injected transient"):
				continue
			}
			if !c.prog.ExpectFault {
				t.Errorf("%s: unexpected failure %v", label, o.err)
				continue
			}
			if core.IsInternal(o.err) {
				t.Errorf("%s: guest fault surfaced as Internal: %v", label, o.err)
			}
			if core.Classify(o.err) != core.Permanent {
				t.Errorf("%s: guest fault classified %v, want Permanent", label, core.Classify(o.err))
			}
			gf, ok := core.AsGuestFault(o.err)
			if !ok {
				t.Errorf("%s: error %v carries no guest fault", label, o.err)
				continue
			}
			if gf.Mem.Addr != c.prog.FaultAddr || gf.Mem.Write != c.prog.FaultWrite {
				t.Errorf("%s: fault %v, want addr %#x write %v", label, o.err, c.prog.FaultAddr, c.prog.FaultWrite)
			}
			_, refGF, rerr := serial(i)
			if refGF == nil {
				t.Fatalf("%s: serial replay ended with %v, want a guest fault", label, rerr)
			}
			if gf.PC != refGF.PC || gf.Mem != refGF.Mem {
				t.Errorf("%s: pooled fault %v, serial replay %v", label, o.err, rerr)
			}
			faulted++
			continue
		}
		if c.prog.ExpectFault {
			t.Errorf("%s: run completed, want guest fault at %#x", label, c.prog.FaultAddr)
			continue
		}
		completed++
		fp, _, serr := serial(i)
		if serr != nil {
			t.Fatalf("%s: serial replay failed: %v", label, serr)
		}
		if got := fingerprintOf(o.res); got != fp {
			t.Errorf("%s: pooled result diverged from serial replay\n pooled %s\n serial %s", label, got, fp)
		}
	}
	if faulted == 0 {
		t.Error("no request surfaced a guest fault; the mix never exercised the fault path")
	}
	if completed == 0 {
		t.Error("no success-expected request completed")
	}
	h := srv.Health()
	if h.Submitted != uint64(numRequests) {
		t.Errorf("health.Submitted = %d, want %d", h.Submitted, numRequests)
	}
	if h.Completed+h.Failed != uint64(numRequests) {
		t.Errorf("health: completed %d + failed %d != %d", h.Completed, h.Failed, numRequests)
	}
	t.Logf("guest-fault chaos: %d faulted, %d completed, %d retries, %d recovered panics",
		faulted, completed, h.Retries, h.Panics)
}

// TestServeDeadline: a request deadline aborts within one budget slice
// and reports context.DeadlineExceeded through the server path.
func TestServeDeadline(t *testing.T) {
	srv := NewServer(ServerOptions{Pool: Options{Workers: 1, Retries: -1}})
	defer srv.Close()
	opt := core.DefaultOptions(core.ExceptionHandling)
	opt.SliceInsts = 4096
	_, err := srv.Do(context.Background(), Request{
		Load: asmProgram(t, `
        mov     ebx, 0x10000000
        mov     ecx, 0
spin:   mov     edx, dword [ebx+2]
        add     ecx, 1
        cmp     ecx, 2000000000
        jl      spin
        halt
`),
		Options: &opt,
		Budget:  1 << 62,
		Timeout: 10 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if core.Classify(err) != core.Permanent {
		t.Errorf("deadline failure classified %v, want Permanent", core.Classify(err))
	}
}

// TestServeEngineReuseAcrossPrograms: one worker serves different
// programs and mechanisms back to back; each result matches a fresh
// serial engine, proving Reset-based recycling leaks no state between
// tenants.
func TestServeEngineReuseAcrossPrograms(t *testing.T) {
	progs := chaosPrograms(t)
	srv := NewServer(ServerOptions{
		Pool:   Options{Workers: 1, Retries: -1}, // one worker: every request reuses one engine
		Budget: 500_000_000,
	})
	defer srv.Close()
	for round := 0; round < 2; round++ {
		for i, p := range progs {
			opt := p.opt
			res, err := srv.Do(context.Background(), Request{Load: p.load, Options: &opt})
			if err != nil {
				t.Fatalf("round %d %s: %v", round, p.name, err)
			}
			if res.Worker != 0 {
				t.Fatalf("expected single-worker pool, got worker %d", res.Worker)
			}
			m := mem.New()
			mach := machine.New(m, machine.DefaultParams())
			e := core.NewEngine(m, mach, p.opt)
			entry := p.load(m)
			if err := e.Run(entry, 500_000_000); err != nil {
				t.Fatalf("serial %s: %v", p.name, err)
			}
			want := fmt.Sprintf("cpu=%+v counters=%+v stats=%+v", e.FinalCPU(), mach.Counters(), e.Stats())
			if got := fingerprintOf(res); got != want {
				t.Errorf("round %d request %d (%s): recycled engine diverged\n got %s\nwant %s",
					round, i, p.name, got, want)
			}
		}
	}
}

// TestServeImageRequest: the simple Image/Data request form works end to
// end and returns the guest's architectural result.
func TestServeImageRequest(t *testing.T) {
	img, err := guestasm.Assemble(`
        mov     ebx, 0x10000000
        mov     eax, dword [ebx+2]
        halt
`, guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ServerOptions{Pool: Options{Workers: 2}})
	defer srv.Close()
	res, err := srv.Do(context.Background(), Request{
		Image: img,
		Data:  []byte{0, 0, 0x11, 0x22, 0x33, 0x44, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.CPU.R[guest.EAX], uint32(0x44332211); got != want {
		t.Errorf("EAX = %#x, want %#x", got, want)
	}
	if res.Counters.MisalignTraps == 0 {
		t.Error("misaligned load did not trap under exception handling")
	}
	if _, err := srv.Do(context.Background(), Request{}); err == nil || core.Classify(err) != core.Permanent {
		t.Errorf("empty request: err = %v, want Permanent error", err)
	}
}
