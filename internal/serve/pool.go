// Package serve is the resilient multi-session serving layer: it runs many
// guest programs concurrently over a small pool of reusable DBT engines.
//
// The package splits into two layers. Pool is the generic machinery — a
// fixed set of worker goroutines behind a bounded admission queue, with
// load shedding, per-request deadlines, retry with exponential backoff on
// transient errors, a per-key circuit breaker, panic isolation, and
// graceful drain. Server sits on top and owns the DBT specifics: each
// worker lazily builds one engine (memory + machine + translator) and
// reuses it across requests via Engine.Reset, so steady-state serving
// allocates no fresh address spaces.
//
// Error handling follows the core taxonomy (core.ErrClass): Transient
// failures are retried on the same worker with jittered backoff; Permanent
// and Internal failures are returned immediately; repeated failures for
// one request key trip that key's circuit breaker, shedding further work
// for the key until a cooldown passes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"mdabt/internal/core"
	"mdabt/internal/faultinject"
)

// Sentinel errors of the serving layer. All three are classified (see
// core.Classify): shedding and breaker rejections are Transient — the
// request was never attempted and a later retry may succeed — while
// draining is Permanent for this pool instance.
var (
	// ErrOverloaded reports that the admission queue was full (load shed).
	ErrOverloaded error = core.WithClass(core.Transient, errors.New("serve: overloaded"))
	// ErrDraining reports that the pool no longer accepts work.
	ErrDraining error = core.WithClass(core.Permanent, errors.New("serve: draining"))
	// ErrCircuitOpen reports that the request key's circuit breaker is open.
	ErrCircuitOpen error = core.WithClass(core.Transient, errors.New("serve: circuit open"))
)

// Task is one unit of pooled work. It runs on a worker goroutine and may
// use the worker's per-worker state (engines, scratch buffers). A Task
// must honour ctx: the pool relies on cooperative cancellation to keep
// deadlines responsive. Tasks that may be retried must be idempotent.
type Task func(ctx context.Context, w *Worker) error

// Worker is the per-goroutine execution context handed to every Task.
type Worker struct {
	// ID is the worker index in [0, Options.Workers).
	ID int
	// Chaos is this worker's independent fork of Options.Chaos (nil when
	// chaos is disabled). Deterministic per (seed, ID).
	Chaos *faultinject.Plan
	// Attempt is the 1-based attempt number of the task currently running
	// (retries rerun on the same worker, preserving engine affinity).
	Attempt int
	// State is scratch space owned by the task layer; the Server stores
	// each worker's lazily-built engine bundle here.
	State any

	rng *rand.Rand // backoff jitter stream, deterministic per (seed, ID)
}

// Options configures a Pool. The zero value selects sensible defaults.
type Options struct {
	// Workers is the number of worker goroutines (default: GOMAXPROCS).
	Workers int
	// Queue bounds the admission queue (default: 2×Workers). A full queue
	// sheds new requests with ErrOverloaded.
	Queue int
	// Retries is the number of re-attempts after a Transient failure
	// (default 2; negative disables retry).
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt up to
	// RetryCap, with up to 50% deterministic jitter (defaults 1ms / 50ms).
	RetryBase, RetryCap time.Duration
	// BreakerThreshold trips a key's circuit after this many consecutive
	// failures (default 5; negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped circuit stays open before a
	// half-open probe is admitted (default 250ms).
	BreakerCooldown time.Duration
	// Chaos, when non-nil, arms fault injection: worker i consults
	// Chaos.Fork(i), so the schedule is deterministic per worker and the
	// parent plan is never shared across goroutines.
	Chaos *faultinject.Plan
	// Seed seeds the per-worker backoff jitter streams (default 1).
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Workers
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.RetryBase <= 0 {
		o.RetryBase = time.Millisecond
	}
	if o.RetryCap <= 0 {
		o.RetryCap = 50 * time.Millisecond
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Health is a point-in-time snapshot of pool activity.
type Health struct {
	Workers   int // worker goroutines
	QueueLen  int // requests waiting for a worker
	QueueCap  int // admission queue bound
	InFlight  int // requests admitted but not yet completed
	Draining  bool
	Submitted uint64 // requests admitted
	Completed uint64 // requests finished without error
	Failed    uint64 // requests finished with an error
	Shed      uint64 // requests rejected with ErrOverloaded
	Rejected  uint64 // requests rejected by an open circuit breaker
	Retries   uint64 // transient re-attempts performed
	Panics    uint64 // worker panics recovered into Internal errors
	// OpenCircuits lists keys whose breaker is currently open.
	OpenCircuits []string
}

type job struct {
	ctx  context.Context
	key  string
	task Task
	done chan error
}

// Pool runs Tasks on a fixed set of workers behind a bounded queue.
type Pool struct {
	opt  Options
	jobs chan *job

	mu       sync.RWMutex // admission gate: guards draining/closed vs enqueue
	draining bool
	closed   bool

	jobWG    sync.WaitGroup // in-flight jobs (admitted, not yet done)
	workerWG sync.WaitGroup // worker goroutines

	breakers sync.Map // key → *breaker

	inFlight  atomic.Int64
	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64
	rejected  atomic.Uint64
	retries   atomic.Uint64
	panics    atomic.Uint64
}

// NewPool starts the worker goroutines and returns the pool.
func NewPool(opt Options) *Pool {
	opt = opt.withDefaults()
	p := &Pool{opt: opt, jobs: make(chan *job, opt.Queue)}
	p.workerWG.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		w := &Worker{
			ID:    i,
			Chaos: opt.Chaos.Fork(i),
			rng:   rand.New(rand.NewSource(opt.Seed ^ int64(i+1)*-0x61c8864680b583eb)),
		}
		go p.worker(w)
	}
	return p
}

// Do submits a task and waits for its completion. key names the logical
// request class for circuit breaking ("" opts out). Do sheds immediately
// with ErrOverloaded when the queue is full, and rejects with ErrDraining
// after Drain or Close. The task's error (classified per core.ErrClass)
// is returned as-is; a worker panic surfaces as an Internal error.
func (p *Pool) Do(ctx context.Context, key string, task Task) error {
	return p.submit(ctx, key, task, false)
}

// DoWait is Do with a blocking admission: instead of shedding on a full
// queue it waits for a slot (or ctx). Batch drivers (Each) use it so a
// batch larger than the queue still admits every item.
func (p *Pool) DoWait(ctx context.Context, key string, task Task) error {
	return p.submit(ctx, key, task, true)
}

func (p *Pool) submit(ctx context.Context, key string, task Task, wait bool) error {
	if key != "" {
		if br := p.breakerFor(key); !br.allow(time.Now()) {
			p.rejected.Add(1)
			return ErrCircuitOpen
		}
	}
	j := &job{ctx: ctx, key: key, task: task, done: make(chan error, 1)}

	// Admission runs under the read lock so Drain's transition (write lock)
	// strictly orders against it: once draining is set, no new job can slip
	// into the queue, and every admitted job is already in jobWG.
	p.mu.RLock()
	if p.draining || p.closed {
		p.mu.RUnlock()
		return ErrDraining
	}
	if wait {
		// Blocking admission must not hold the lock across the channel
		// send; reserve the job first so Drain still waits for it.
		p.jobWG.Add(1)
		p.inFlight.Add(1)
		p.mu.RUnlock()
		select {
		case p.jobs <- j:
		case <-ctx.Done():
			p.jobWG.Done()
			p.inFlight.Add(-1)
			return core.WithClass(core.Permanent, ctx.Err())
		}
	} else {
		select {
		case p.jobs <- j:
			p.jobWG.Add(1)
			p.inFlight.Add(1)
		default:
			p.mu.RUnlock()
			p.shed.Add(1)
			return ErrOverloaded
		}
		p.mu.RUnlock()
	}
	p.submitted.Add(1)

	err := <-j.done
	if key != "" {
		p.breakerFor(key).record(err, time.Now())
	}
	if err != nil {
		p.failed.Add(1)
	} else {
		p.completed.Add(1)
	}
	return err
}

// Each runs fn for indices 0..n-1 on the pool and returns the first error
// in index order (all items run regardless). Admission blocks rather than
// sheds, so n may exceed the queue bound. key(i) names each item for
// circuit breaking; a nil key opts every item out.
func (p *Pool) Each(ctx context.Context, n int, key func(int) string, fn func(ctx context.Context, i int, w *Worker) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := ""
			if key != nil {
				k = key(i)
			}
			errs[i] = p.DoWait(ctx, k, func(ctx context.Context, w *Worker) error {
				return fn(ctx, i, w)
			})
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// worker is the per-goroutine service loop.
func (p *Pool) worker(w *Worker) {
	defer p.workerWG.Done()
	for j := range p.jobs {
		j.done <- p.runJob(w, j)
		p.inFlight.Add(-1)
		p.jobWG.Done()
	}
}

// runJob executes one job with panic isolation and transient-retry. All
// attempts run on the same worker so the task keeps its engine affinity.
func (p *Pool) runJob(w *Worker, j *job) error {
	for attempt := 1; ; attempt++ {
		if cerr := j.ctx.Err(); cerr != nil {
			return core.WithClass(core.Permanent, cerr)
		}
		w.Attempt = attempt
		err := p.runOnce(w, j)
		if err == nil {
			return nil
		}
		// Retry only transient failures, within budget, and never once the
		// request's own context is done (the caller has moved on).
		if attempt > p.opt.Retries || !core.IsTransient(err) || j.ctx.Err() != nil {
			return err
		}
		p.retries.Add(1)
		if !p.backoff(w, j.ctx, attempt) {
			return core.WithClass(core.Permanent, j.ctx.Err())
		}
	}
}

// runOnce runs the task once, converting a panic into an Internal error.
func (p *Pool) runOnce(w *Worker, j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			p.panics.Add(1)
			err = core.WithClass(core.Internal,
				fmt.Errorf("serve: worker %d panic: %v\n%s", w.ID, r, debug.Stack()))
		}
	}()
	return j.task(j.ctx, w)
}

// backoff sleeps the exponential-with-jitter delay for attempt; it returns
// false if ctx expired first.
func (p *Pool) backoff(w *Worker, ctx context.Context, attempt int) bool {
	d := p.opt.RetryBase << uint(attempt-1)
	if d > p.opt.RetryCap || d <= 0 {
		d = p.opt.RetryCap
	}
	// Up to +50% jitter, from the worker's deterministic stream, so retry
	// herds decorrelate without losing replayability.
	d += time.Duration(w.rng.Int63n(int64(d)/2 + 1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func (p *Pool) breakerFor(key string) *breaker {
	if br, ok := p.breakers.Load(key); ok {
		return br.(*breaker)
	}
	br, _ := p.breakers.LoadOrStore(key, newBreaker(p.opt.BreakerThreshold, p.opt.BreakerCooldown))
	return br.(*breaker)
}

// Health returns a snapshot of pool activity.
func (p *Pool) Health() Health {
	p.mu.RLock()
	draining := p.draining || p.closed
	p.mu.RUnlock()
	h := Health{
		Workers:   p.opt.Workers,
		QueueLen:  len(p.jobs),
		QueueCap:  p.opt.Queue,
		InFlight:  int(p.inFlight.Load()),
		Draining:  draining,
		Submitted: p.submitted.Load(),
		Completed: p.completed.Load(),
		Failed:    p.failed.Load(),
		Shed:      p.shed.Load(),
		Rejected:  p.rejected.Load(),
		Retries:   p.retries.Load(),
		Panics:    p.panics.Load(),
	}
	p.breakers.Range(func(k, v any) bool {
		if v.(*breaker).isOpen(time.Now()) {
			h.OpenCircuits = append(h.OpenCircuits, k.(string))
		}
		return true
	})
	return h
}

// Drain stops admitting work and waits until every already-admitted
// request (queued or running) has completed, or until ctx expires. The
// workers stay alive; Close ends them. Drain is idempotent.
func (p *Pool) Drain(ctx context.Context) error {
	p.mu.Lock()
	p.draining = true
	p.mu.Unlock()
	done := make(chan struct{})
	go func() {
		p.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain: %w", ctx.Err())
	}
}

// Close drains the pool (unbounded wait) and stops the workers. It is
// idempotent and safe after Drain.
func (p *Pool) Close() error {
	if err := p.Drain(context.Background()); err != nil {
		return err
	}
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.jobs)
	}
	p.workerWG.Wait()
	return nil
}
