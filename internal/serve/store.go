package serve

import (
	"fmt"

	"mdabt/internal/aot"
	"mdabt/internal/core"
	"mdabt/internal/policy"
	"mdabt/internal/store"
)

// This file is the serving layer's persistent-store integration
// (DESIGN.md §15): workers warm-start from store artifacts before a
// request runs, and the per-session trap histories every worker
// accumulates are merged back into the store when the pool drains — so
// profile knowledge survives the worker instead of dying with it. The
// contract mirrors the store's own: any artifact problem (miss,
// corruption, version skew, lock conflict) degrades the request to a cold
// translation; it never fails it and never changes a guest result.

// profKey addresses one pending trap-profile delta.
type profKey struct {
	program     string
	fingerprint string
}

// storeProgram derives the store's program identity for a request: an
// explicit StoreKey wins; otherwise image-loaded programs hash their
// content. Loader-hook requests without a StoreKey have no stable
// identity and skip the store entirely.
func storeProgram(req Request) string {
	if req.StoreKey != "" {
		return req.StoreKey
	}
	if len(req.Image) > 0 {
		return store.HashProgram(req.Image, req.Data)
	}
	return ""
}

// warmStart mutates opt with every artifact the store can supply for
// (program, opt): an AOT block schedule when the request wants the AOT
// tier but carries no schedule, and a static trap profile when the
// mechanism consumes one and the request brought none. Every load
// validates before adoption; on any error the options are left cold.
// Returns the options fingerprint (the store key component) for reuse.
func (s *Server) warmStart(opt *core.Options, program string) string {
	fp := opt.Fingerprint()
	if opt.AOT && opt.AOTBlocks == nil {
		var im aot.Image
		err := s.store.Load(store.Key{Program: program, Fingerprint: fp, Kind: store.KindAOTImage}, &im)
		if err == nil {
			// The store's checksum covers bytes; the image's own checksum
			// covers content — both must agree before adoption.
			err = im.Verify()
		}
		if err == nil {
			opt.AOTBlocks = im.Blocks
		}
	}
	if opt.StaticSites == nil {
		if p, ok := policy.ByID(int(opt.Mechanism)); ok && p.UsesStaticProfile() {
			var tp store.TrapProfile
			if s.store.Load(store.Key{Program: program, Fingerprint: fp, Kind: store.KindTrapProfile}, &tp) == nil {
				opt.StaticSites = tp.StaticSites()
			}
		}
	}
	return fp
}

// accumulate folds one completed request's site history into the worker
// pool's pending profile delta for (program, fingerprint). The delta
// stays in memory until flushProfiles merges it into the store. A session
// with an empty history still counts: "ran warm and discovered nothing
// new" is signal (the profile converged), not absence of a session.
func (s *Server) accumulate(program, fingerprint string, hist map[uint32]core.SiteHistoryEntry) {
	s.profMu.Lock()
	defer s.profMu.Unlock()
	pk := profKey{program: program, fingerprint: fingerprint}
	tp := s.profiles[pk]
	if tp == nil {
		tp = &store.TrapProfile{}
		s.profiles[pk] = tp
	}
	tp.Sessions++
	for pc, h := range hist {
		tp.Add(pc, h.MDA, h.Aligned)
	}
}

// flushProfiles merges every pending trap-profile delta into the store.
// Deltas that fail to merge (writer lock held, filesystem refusal) are
// requeued so a later flush — Drain then Close, or the next Drain —
// retries them; the first error is reported. Called with admissions
// stopped, but safe concurrently with accumulate.
func (s *Server) flushProfiles() error {
	if s.store == nil {
		return nil
	}
	s.profMu.Lock()
	pending := s.profiles
	s.profiles = make(map[profKey]*store.TrapProfile)
	s.profMu.Unlock()
	var first error
	for pk, tp := range pending {
		k := store.Key{Program: pk.program, Fingerprint: pk.fingerprint, Kind: store.KindTrapProfile}
		if err := s.store.MergeTrapProfile(k, tp); err != nil {
			if first == nil {
				first = fmt.Errorf("serve: flush trap profile %s/%s: %w", pk.program, pk.fingerprint, err)
			}
			s.profMu.Lock()
			if cur := s.profiles[pk]; cur != nil {
				cur.Merge(tp)
			} else {
				s.profiles[pk] = tp
			}
			s.profMu.Unlock()
		}
	}
	return first
}

// StoreStats snapshots the persistent store's counters; ok is false when
// the server runs without a store.
func (s *Server) StoreStats() (st store.Stats, ok bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}

// joinDrainErr keeps the pool's drain verdict primary but does not let a
// failed profile flush pass silently.
func joinDrainErr(drain, flush error) error {
	if drain != nil {
		return drain
	}
	return flush
}
