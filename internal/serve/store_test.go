package serve

import (
	"context"
	"testing"

	"mdabt/internal/aot"
	"mdabt/internal/core"
	"mdabt/internal/faultinject"
	"mdabt/internal/guest"
	"mdabt/internal/guestasm"
	"mdabt/internal/mem"
	"mdabt/internal/store"
)

// storeTestProgram assembles the shared MDA loop and returns (image,
// data) bytes for an Image-loaded request — the path with an automatic
// store identity.
func storeTestProgram(t *testing.T) ([]byte, []byte) {
	t.Helper()
	img, err := guestasm.Assemble(mdaLoopSrc, guest.CodeBase)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 512)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	return img, data
}

func storeServer(t *testing.T, st *store.Store) *Server {
	t.Helper()
	return NewServer(ServerOptions{
		Pool:  Options{Workers: 2, Queue: 8},
		Store: st,
	})
}

func doReq(t *testing.T, s *Server, req Request) *Result {
	t.Helper()
	res, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return res
}

// TestWarmStartProfileAcrossServerSessions is the profile lifecycle end
// to end: session 1 runs cold (SPEH with no profile, eating discovery
// traps), its trap history flushes into the store on Drain, and session 2
// — a fresh server on the same store directory — warm-starts with the
// merged profile: identical guest results, strictly fewer traps.
func TestWarmStartProfileAcrossServerSessions(t *testing.T) {
	img, data := storeTestProgram(t)
	opt := core.DefaultOptions(core.SPEH)
	req := Request{Key: "p", Image: img, Data: data, Options: &opt}
	dir := t.TempDir()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := storeServer(t, st1)
	cold := doReq(t, s1, req)
	if cold.Counters.MisalignTraps == 0 {
		t.Fatalf("cold SPEH run trapped 0 times; the workload is supposed to discover sites via traps")
	}
	if err := s1.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	s1.Close()
	if st := st1.Stats(); st.Merges == 0 || st.Saves == 0 {
		t.Fatalf("drain did not flush the trap profile: %+v", st)
	}

	// The stored profile is addressed by (content hash, fingerprint).
	var tp store.TrapProfile
	k := store.Key{Program: store.HashProgram(img, data), Fingerprint: opt.Fingerprint(), Kind: store.KindTrapProfile}
	if err := st1.Load(k, &tp); err != nil {
		t.Fatalf("stored profile unreadable: %v", err)
	}
	if tp.Sessions != 1 || tp.StaticSites() == nil {
		t.Fatalf("stored profile: %+v", tp)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s2 := storeServer(t, st2)
	defer s2.Close()
	warm := doReq(t, s2, req)
	if warm.CPU != cold.CPU {
		t.Fatalf("warm guest results diverge from cold:\n  cold %+v\n  warm %+v", cold.CPU, warm.CPU)
	}
	if warm.Counters.MisalignTraps >= cold.Counters.MisalignTraps {
		t.Fatalf("warm start did not reduce traps: cold %d, warm %d",
			cold.Counters.MisalignTraps, warm.Counters.MisalignTraps)
	}
	if st := st2.Stats(); st.Hits == 0 {
		t.Fatalf("warm session never hit the store: %+v", st)
	}
}

// TestWarmStartAOTImageBitIdentical: a stored AOT image adopted through
// the serve warm path reproduces the cold self-recovered run bit for bit
// — CPU, machine counters, and engine stats (the PR 7 adoption
// invariant, now across a persistence boundary).
func TestWarmStartAOTImageBitIdentical(t *testing.T) {
	img, data := storeTestProgram(t)
	opt := core.DefaultOptions(core.AOT)
	req := Request{Key: "p", Image: img, Data: data, Options: &opt}

	// Cold reference: no store; the engine recovers the CFG itself.
	ref := storeServer(t, nil)
	cold := doReq(t, ref, req)
	ref.Close()
	if cold.Stats.AOTBlocks == 0 {
		t.Fatalf("cold aot run preseeded 0 blocks: %+v", cold.Stats)
	}

	// Build and persist the image the way a front end would.
	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(uint64(guest.DataBase), data)
	image := aot.BuildFromMemory(m, guest.CodeBase)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := store.Key{Program: store.HashProgram(img, data), Fingerprint: opt.Fingerprint(), Kind: store.KindAOTImage}
	if err := st.Save(k, image); err != nil {
		t.Fatal(err)
	}

	warm := storeServer(t, st)
	defer warm.Close()
	got := doReq(t, warm, req)
	if got.CPU != cold.CPU || got.Counters != cold.Counters || got.Stats != cold.Stats {
		t.Fatalf("warm-from-store aot run not bit-identical:\n  cold stats %+v\n  warm stats %+v\n  cold counters %+v\n  warm counters %+v",
			cold.Stats, got.Stats, cold.Counters, got.Counters)
	}
	if st.Stats().Hits == 0 {
		t.Fatalf("warm aot session never hit the store: %+v", st.Stats())
	}
}

// TestStoreCorruptionDegradesToCold: a corrupt stored image (latent
// injected bit flip) must quarantine on the warm path and the request
// must complete with cold-identical results — no error, no wrong result.
func TestStoreCorruptionDegradesToCold(t *testing.T) {
	img, data := storeTestProgram(t)
	opt := core.DefaultOptions(core.AOT)
	req := Request{Key: "p", Image: img, Data: data, Options: &opt}

	ref := storeServer(t, nil)
	cold := doReq(t, ref, req)
	ref.Close()

	m := mem.New()
	m.WriteBytes(guest.CodeBase, img)
	m.WriteBytes(uint64(guest.DataBase), data)
	image := aot.BuildFromMemory(m, guest.CodeBase)
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	st.SetFaultPlan(faultinject.New(chaosSeed).At(faultinject.StoreBitFlip, 1))
	k := store.Key{Program: store.HashProgram(img, data), Fingerprint: opt.Fingerprint(), Kind: store.KindAOTImage}
	if err := st.Save(k, image); err != nil {
		t.Fatalf("latent-corrupt save reported error: %v", err)
	}

	s := storeServer(t, st)
	defer s.Close()
	got := doReq(t, s, req)
	if got.CPU != cold.CPU || got.Counters != cold.Counters || got.Stats != cold.Stats {
		t.Fatalf("cold fallback after corruption not identical to cold run")
	}
	stats := st.Stats()
	if stats.Corrupt != 1 || stats.Quarantined != 1 {
		t.Fatalf("corruption not quarantined: %+v", stats)
	}
}

// TestProfilesMergeAcrossDrains: repeated sessions accumulate — the
// stored profile's session count and site counts grow monotonically.
func TestProfilesMergeAcrossDrains(t *testing.T) {
	img, data := storeTestProgram(t)
	opt := core.DefaultOptions(core.SPEH)
	req := Request{Key: "p", Image: img, Data: data, Options: &opt}
	dir := t.TempDir()
	k := store.Key{Program: store.HashProgram(img, data), Fingerprint: opt.Fingerprint(), Kind: store.KindTrapProfile}

	var lastSessions uint64
	for round := 1; round <= 3; round++ {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := storeServer(t, st)
		doReq(t, s, req)
		doReq(t, s, req)
		if err := s.Close(); err != nil {
			t.Fatalf("round %d close: %v", round, err)
		}
		var tp store.TrapProfile
		if err := st.Load(k, &tp); err != nil {
			t.Fatalf("round %d load: %v", round, err)
		}
		if tp.Sessions <= lastSessions {
			t.Fatalf("round %d: sessions did not grow (%d -> %d)", round, lastSessions, tp.Sessions)
		}
		lastSessions = tp.Sessions
	}
	if lastSessions != 6 {
		t.Fatalf("3 rounds × 2 requests should aggregate 6 sessions, got %d", lastSessions)
	}
}

// TestLoaderRequestWithoutStoreKeyBypassesStore: no stable content
// identity means no store traffic — not a mis-keyed artifact.
func TestLoaderRequestWithoutStoreKeyBypassesStore(t *testing.T) {
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := storeServer(t, st)
	defer s.Close()
	opt := core.DefaultOptions(core.ExceptionHandling)
	doReq(t, s, Request{Key: "p", Load: asmProgram(t, mdaLoopSrc), Options: &opt})
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := st.Stats(); got.Loads != 0 || got.Saves != 0 {
		t.Fatalf("loader request touched the store: %+v", got)
	}
}
