package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mdabt/internal/core"
)

func transientErr(msg string) error {
	return core.WithClass(core.Transient, errors.New(msg))
}

// TestPoolRunsTasks: the basic happy path, many tasks across workers.
func TestPoolRunsTasks(t *testing.T) {
	p := NewPool(Options{Workers: 4, Queue: 64})
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	wg.Wait()
	if ran.Load() != 32 {
		t.Fatalf("ran %d tasks, want 32", ran.Load())
	}
	h := p.Health()
	if h.Completed != 32 || h.Failed != 0 {
		t.Errorf("health = %+v, want 32 completed", h)
	}
}

// TestPoolShedsWhenFull: with workers wedged and the queue full, Do sheds
// immediately with ErrOverloaded instead of blocking.
func TestPoolShedsWhenFull(t *testing.T) {
	p := NewPool(Options{Workers: 1, Queue: 1})
	defer p.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	go p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		close(started)
		<-release
		return nil
	})
	<-started
	// Fill the single queue slot (it will wait behind the wedged worker).
	go p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error { return nil })
	// Give the queued job a moment to occupy the slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(p.jobs) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	err := p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error { return nil })
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if !core.IsTransient(err) {
		t.Error("ErrOverloaded is not Transient")
	}
	close(release)
	if h := p.Health(); h.Shed == 0 {
		t.Errorf("health.Shed = 0 after shedding")
	}
}

// TestPoolRetriesTransient: transient failures retry on the same worker
// with attempt numbers ticking up; permanent failures do not retry.
func TestPoolRetriesTransient(t *testing.T) {
	p := NewPool(Options{Workers: 2, Retries: 3, RetryBase: time.Microsecond})
	defer p.Close()

	var attempts []int
	var workers []int
	err := p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		attempts = append(attempts, w.Attempt)
		workers = append(workers, w.ID)
		if len(attempts) < 3 {
			return transientErr("flaky")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do after retries: %v", err)
	}
	if len(attempts) != 3 || attempts[2] != 3 {
		t.Fatalf("attempts = %v, want [1 2 3]", attempts)
	}
	for _, w := range workers {
		if w != workers[0] {
			t.Fatalf("retries hopped workers: %v", workers)
		}
	}

	calls := 0
	err = p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		calls++
		return core.WithClass(core.Permanent, errors.New("bad program"))
	})
	if err == nil || calls != 1 {
		t.Fatalf("permanent error: calls=%d err=%v, want 1 call", calls, err)
	}

	calls = 0
	err = p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		calls++
		return transientErr("always")
	})
	if err == nil || calls != 4 {
		t.Fatalf("exhausted retries: calls=%d err=%v, want 4 calls (1+3 retries)", calls, err)
	}
	if !core.IsTransient(err) {
		t.Error("exhausted-retry error lost its Transient class")
	}
}

// TestPoolPanicIsolation: a panicking task yields an Internal error; the
// worker survives and keeps serving.
func TestPoolPanicIsolation(t *testing.T) {
	p := NewPool(Options{Workers: 1, Retries: 0})
	defer p.Close()
	err := p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		panic("boom")
	})
	if err == nil || !core.IsInternal(err) {
		t.Fatalf("panic surfaced as %v, want Internal error", err)
	}
	// Same (only) worker must still serve.
	err = p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error { return nil })
	if err != nil {
		t.Fatalf("worker dead after panic: %v", err)
	}
	if h := p.Health(); h.Panics != 1 {
		t.Errorf("health.Panics = %d, want 1", h.Panics)
	}
}

// TestBreakerTripAndRecover: repeated failures for one key trip its
// circuit; other keys are unaffected; after the cooldown a half-open
// probe recloses the circuit on success.
func TestBreakerTripAndRecover(t *testing.T) {
	p := NewPool(Options{
		Workers: 1, Retries: -1,
		BreakerThreshold: 3, BreakerCooldown: 30 * time.Millisecond,
	})
	defer p.Close()
	fail := func(ctx context.Context, w *Worker) error {
		return core.WithClass(core.Permanent, errors.New("doomed"))
	}
	ok := func(ctx context.Context, w *Worker) error { return nil }

	for i := 0; i < 3; i++ {
		if err := p.Do(context.Background(), "prog-a", fail); err == nil {
			t.Fatal("failing task succeeded")
		}
	}
	if err := p.Do(context.Background(), "prog-a", ok); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("after trip: err = %v, want ErrCircuitOpen", err)
	}
	if err := p.Do(context.Background(), "prog-b", ok); err != nil {
		t.Fatalf("other key affected by prog-a's breaker: %v", err)
	}
	h := p.Health()
	if len(h.OpenCircuits) != 1 || h.OpenCircuits[0] != "prog-a" {
		t.Errorf("OpenCircuits = %v, want [prog-a]", h.OpenCircuits)
	}

	time.Sleep(35 * time.Millisecond)
	// Half-open: the probe is admitted and its success recloses the circuit.
	if err := p.Do(context.Background(), "prog-a", ok); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	if err := p.Do(context.Background(), "prog-a", ok); err != nil {
		t.Fatalf("circuit did not reclose: %v", err)
	}
}

// TestBreakerReopensOnFailedProbe: a failed half-open probe re-opens the
// circuit for another full cooldown.
func TestBreakerReopensOnFailedProbe(t *testing.T) {
	b := newBreaker(2, 50*time.Millisecond)
	t0 := time.Now()
	b.record(errors.New("x"), t0)
	b.record(errors.New("x"), t0)
	if b.allow(t0.Add(10 * time.Millisecond)) {
		t.Fatal("open circuit admitted a request inside the cooldown")
	}
	if !b.allow(t0.Add(60 * time.Millisecond)) {
		t.Fatal("half-open probe not admitted after cooldown")
	}
	// Concurrent second request while the probe is in flight is rejected.
	if b.allow(t0.Add(61 * time.Millisecond)) {
		t.Fatal("two concurrent half-open probes admitted")
	}
	b.record(errors.New("probe failed"), t0.Add(62*time.Millisecond))
	if b.allow(t0.Add(70 * time.Millisecond)) {
		t.Fatal("circuit closed after failed probe")
	}
	if !b.allow(t0.Add(115 * time.Millisecond)) {
		t.Fatal("second probe not admitted after re-cooldown")
	}
	b.record(nil, t0.Add(116*time.Millisecond))
	if !b.allow(t0.Add(117 * time.Millisecond)) {
		t.Fatal("circuit not closed after successful probe")
	}
}

// TestBreakerIgnoresContextErrors: caller cancellation is not evidence
// against the key.
func TestBreakerIgnoresContextErrors(t *testing.T) {
	b := newBreaker(1, time.Hour)
	now := time.Now()
	b.record(fmt.Errorf("wrapped: %w", context.DeadlineExceeded), now)
	b.record(context.Canceled, now)
	if !b.allow(now) {
		t.Fatal("context errors tripped the breaker")
	}
}

// TestPoolDrain: drain rejects new work, waits for queued and running
// jobs, and leaves completed counts intact.
func TestPoolDrain(t *testing.T) {
	p := NewPool(Options{Workers: 2, Queue: 8})
	release := make(chan struct{})
	var done atomic.Int64
	results := make(chan error, 6)
	for i := 0; i < 6; i++ {
		go func() {
			results <- p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
				<-release
				done.Add(1)
				return nil
			})
		}()
	}
	// Wait until both workers are wedged and the rest are queued.
	deadline := time.Now().Add(2 * time.Second)
	for p.Health().InFlight < 6 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- p.Drain(context.Background()) }()
	time.Sleep(5 * time.Millisecond) // let Drain set the gate

	if err := p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error { return nil }); !errors.Is(err, ErrDraining) {
		t.Fatalf("Do during drain: %v, want ErrDraining", err)
	}
	select {
	case <-drained:
		t.Fatal("Drain returned with jobs still wedged")
	default:
	}
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if done.Load() != 6 {
		t.Fatalf("drain lost work: %d/6 jobs ran", done.Load())
	}
	for i := 0; i < 6; i++ {
		if err := <-results; err != nil {
			t.Errorf("admitted job failed during drain: %v", err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatalf("Close after Drain: %v", err)
	}
}

// TestPoolDrainDeadline: a drain bounded by context gives up when jobs
// don't finish in time.
func TestPoolDrainDeadline(t *testing.T) {
	p := NewPool(Options{Workers: 1})
	release := make(chan struct{})
	go p.Do(context.Background(), "", func(ctx context.Context, w *Worker) error {
		<-release
		return nil
	})
	deadline := time.Now().Add(2 * time.Second)
	for p.Health().InFlight == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := p.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain = %v, want DeadlineExceeded", err)
	}
	close(release)
	p.Close()
}

// TestEachOrderedErrors: Each runs every item even past failures and
// reports the first error in index order, mirroring the experiment
// session's contract.
func TestEachOrderedErrors(t *testing.T) {
	p := NewPool(Options{Workers: 3, Queue: 2, Retries: -1})
	defer p.Close()
	var ran atomic.Int64
	err := p.Each(context.Background(), 20, nil, func(ctx context.Context, i int, w *Worker) error {
		ran.Add(1)
		if i == 7 || i == 13 {
			return fmt.Errorf("item %d failed", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 7 failed" {
		t.Fatalf("err = %v, want first error in order (item 7)", err)
	}
	if ran.Load() != 20 {
		t.Fatalf("Each ran %d/20 items (queue smaller than batch must still admit all)", ran.Load())
	}
}

// TestDoRespectsContext: a task that honours ctx is cancelled and the
// error keeps errors.Is(err, context.DeadlineExceeded) through the
// classification wrapper.
func TestDoRespectsContext(t *testing.T) {
	p := NewPool(Options{Workers: 1, Retries: -1})
	defer p.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	err := p.Do(ctx, "", func(ctx context.Context, w *Worker) error {
		<-ctx.Done()
		return core.WithClass(core.Permanent, ctx.Err())
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}
