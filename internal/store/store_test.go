package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mdabt/internal/faultinject"
)

type testPayload struct {
	Name  string `json:"name"`
	Value int    `json:"value"`
	Blob  []byte `json:"blob,omitempty"`
}

func testKey(kind Kind) Key {
	return Key{Program: "prog-" + strings.Repeat("ab", 8), Fingerprint: "fp-0011", Kind: kind}
}

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func quarantineCount(t *testing.T, s *Store) int {
	t.Helper()
	names, err := s.Quarantined()
	if err != nil {
		t.Fatalf("Quarantined: %v", err)
	}
	return len(names)
}

func TestRoundTrip(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	in := testPayload{Name: "x", Value: 42, Blob: []byte{1, 2, 3}}
	if err := s.Save(k, &in); err != nil {
		t.Fatalf("Save: %v", err)
	}
	var out testPayload
	if err := s.Load(k, &out); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if out.Name != in.Name || out.Value != in.Value || string(out.Blob) != string(in.Blob) {
		t.Fatalf("round trip mismatch: got %+v want %+v", out, in)
	}
	st := s.Stats()
	if st.Saves != 1 || st.Loads != 1 || st.Hits != 1 || st.Misses != 0 || st.Corrupt != 0 {
		t.Fatalf("stats after round trip: %+v", st)
	}
}

func TestMissIsNotFound(t *testing.T) {
	s := mustOpen(t)
	var out testPayload
	err := s.Load(testKey(KindTrapProfile), &out)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load on empty store: got %v, want ErrNotFound", err)
	}
	if st := s.Stats(); st.Misses != 1 || st.Corrupt != 0 {
		t.Fatalf("stats after miss: %+v", st)
	}
}

// keyDistinctness: distinct programs, fingerprints, and kinds address
// distinct artifacts.
func TestKeySeparation(t *testing.T) {
	s := mustOpen(t)
	base := testKey(KindAOTImage)
	variants := []Key{
		base,
		{Program: base.Program, Fingerprint: "fp-other", Kind: base.Kind},
		{Program: "prog-other", Fingerprint: base.Fingerprint, Kind: base.Kind},
		{Program: base.Program, Fingerprint: base.Fingerprint, Kind: KindTrapProfile},
	}
	for i, k := range variants {
		if err := s.Save(k, &testPayload{Value: i}); err != nil {
			t.Fatalf("Save %d: %v", i, err)
		}
	}
	for i, k := range variants {
		var out testPayload
		if err := s.Load(k, &out); err != nil {
			t.Fatalf("Load %d: %v", i, err)
		}
		if out.Value != i {
			t.Fatalf("key %d: got value %d, want %d", i, out.Value, i)
		}
	}
}

// corruptOnDisk mutates the stored artifact file via fn and returns its
// path.
func corruptOnDisk(t *testing.T, s *Store, k Key, fn func([]byte) []byte) string {
	t.Helper()
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read artifact: %v", err)
	}
	if err := os.WriteFile(path, fn(raw), 0o644); err != nil {
		t.Fatalf("rewrite artifact: %v", err)
	}
	return path
}

func TestTruncationQuarantines(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	corruptOnDisk(t, s, k, func(b []byte) []byte { return b[:len(b)/3] })
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of truncated artifact: got %v, want ErrCorrupt", err)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine entries: got %d, want 1", n)
	}
	// The corrupt entry left the object tree: next read is a clean miss.
	if err := s.Load(k, &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after quarantine: got %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 || st.Misses != 1 {
		t.Fatalf("stats after truncation: %+v", st)
	}
}

func TestBitFlipQuarantines(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7, Blob: []byte(strings.Repeat("z", 64))}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	corruptOnDisk(t, s, k, func(b []byte) []byte {
		// Flip a bit inside the payload body (past the envelope header).
		i := len(b) / 2
		b[i] ^= 0x01
		return b
	})
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of bit-flipped artifact: got %v, want ErrCorrupt", err)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine entries: got %d, want 1", n)
	}
}

func TestVersionSkewQuarantines(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	corruptOnDisk(t, s, k, func(b []byte) []byte {
		out := strings.Replace(string(b),
			fmt.Sprintf("\"version\":%d", FormatVersion),
			fmt.Sprintf("\"version\":%d", FormatVersion+1), 1)
		if out == string(b) {
			t.Fatalf("version field not found in envelope")
		}
		return []byte(out)
	})
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of version-skewed artifact: got %v, want ErrCorrupt", err)
	}
	st := s.Stats()
	if st.VersionSkew != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after version skew: %+v", st)
	}
}

func TestForeignArtifactQuarantines(t *testing.T) {
	s := mustOpen(t)
	a := testKey(KindAOTImage)
	b := Key{Program: a.Program, Fingerprint: "fp-other", Kind: a.Kind}
	if err := s.Save(a, &testPayload{Value: 7}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// A foreign artifact lands under b's name (renamed file, collision, a
	// version-skewed writer): key validation must reject it.
	if err := os.Rename(s.path(a), s.path(b)); err != nil {
		t.Fatalf("rename: %v", err)
	}
	var out testPayload
	if err := s.Load(b, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load of foreign artifact: got %v, want ErrCorrupt", err)
	}
	st := s.Stats()
	if st.Foreign != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after foreign load: %+v", st)
	}
}

func TestInjectedTornWriteIsLatent(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	s.SetFaultPlan(faultinject.New(1).At(faultinject.StoreTornWrite, 1))
	// The torn save reports success — the corruption is latent.
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("torn Save reported error: %v", err)
	}
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load after torn write: got %v, want ErrCorrupt", err)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine entries: got %d, want 1", n)
	}
	// A clean rewrite recovers the slot.
	if err := s.Save(k, &testPayload{Value: 8}); err != nil {
		t.Fatalf("clean Save: %v", err)
	}
	if err := s.Load(k, &out); err != nil || out.Value != 8 {
		t.Fatalf("Load after recovery: %v (value %d)", err, out.Value)
	}
}

func TestInjectedBitFlipIsLatent(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	s.SetFaultPlan(faultinject.New(1).At(faultinject.StoreBitFlip, 1))
	if err := s.Save(k, &testPayload{Value: 7, Blob: []byte(strings.Repeat("q", 128))}); err != nil {
		t.Fatalf("bit-flipped Save reported error: %v", err)
	}
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load after bit flip: got %v, want ErrCorrupt", err)
	}
}

func TestInjectedStaleFingerprintQuarantinesAsForeign(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	s.SetFaultPlan(faultinject.New(1).At(faultinject.StoreStaleFingerprint, 1))
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("stale-fingerprint Save reported error: %v", err)
	}
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load after stale fingerprint: got %v, want ErrCorrupt", err)
	}
	st := s.Stats()
	if st.Foreign != 1 || st.Quarantined != 1 {
		t.Fatalf("stats after stale fingerprint: %+v", st)
	}
}

func TestInjectedReadErrorIsACleanMiss(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	s.SetFaultPlan(faultinject.New(1).At(faultinject.StoreReadError, 1))
	var out testPayload
	err := s.Load(k, &out)
	if err == nil || errors.Is(err, ErrNotFound) || errors.Is(err, ErrCorrupt) {
		t.Fatalf("Load under read error: got %v, want a plain I/O error", err)
	}
	// Nothing quarantined — the artifact is fine, the read wasn't.
	if n := quarantineCount(t, s); n != 0 {
		t.Fatalf("quarantine entries after read error: got %d, want 0", n)
	}
	if err := s.Load(k, &out); err != nil || out.Value != 7 {
		t.Fatalf("Load after transient read error: %v (value %d)", err, out.Value)
	}
	st := s.Stats()
	if st.ReadErrors != 1 || st.Hits != 1 {
		t.Fatalf("stats after read error: %+v", st)
	}
}

func TestInjectedLockHeldSkipsSave(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindAOTImage)
	s.SetFaultPlan(faultinject.New(1).At(faultinject.StoreLockHeld, 1))
	if err := s.Save(k, &testPayload{Value: 7}); !errors.Is(err, ErrBusy) {
		t.Fatalf("Save under held lock: got %v, want ErrBusy", err)
	}
	var out testPayload
	if err := s.Load(k, &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("nothing should have been written: got %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.LockConflicts != 1 || st.Saves != 0 {
		t.Fatalf("stats after lock conflict: %+v", st)
	}
	// The next save goes through.
	if err := s.Save(k, &testPayload{Value: 8}); err != nil {
		t.Fatalf("Save after conflict: %v", err)
	}
}

func TestOpenSweepsTempDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// A writer killed mid-write leaves temp files next to real artifacts.
	debris := filepath.Join(filepath.Dir(s.path(k)), tempPrefix+"killed-123")
	if err := os.WriteFile(debris, []byte("partial"), 0o644); err != nil {
		t.Fatalf("plant debris: %v", err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := os.Stat(debris); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp debris survived reopen: %v", err)
	}
	// The completed artifact survives.
	var out testPayload
	if err := s2.Load(k, &out); err != nil || out.Value != 7 {
		t.Fatalf("Load after reopen: %v (value %d)", err, out.Value)
	}
}

func TestTrapProfileMergeSemantics(t *testing.T) {
	var a TrapProfile
	a.Sessions = 1
	a.Add(0x100, 5, 10)
	a.Add(0x80, 0, 3)
	b := &TrapProfile{Sessions: 2, Sites: []TrapSite{{PC: 0x100, MDA: 1, Aligned: 2}, {PC: 0x200, MDA: 4, Aligned: 0}}}
	a.Merge(b)
	want := []TrapSite{{PC: 0x80, MDA: 0, Aligned: 3}, {PC: 0x100, MDA: 6, Aligned: 12}, {PC: 0x200, MDA: 4, Aligned: 0}}
	if a.Sessions != 3 || len(a.Sites) != len(want) {
		t.Fatalf("merged profile: %+v", a)
	}
	for i, w := range want {
		if a.Sites[i] != w {
			t.Fatalf("site %d: got %+v want %+v", i, a.Sites[i], w)
		}
	}
	sites := a.StaticSites()
	if len(sites) != 2 || !sites[0x100] || !sites[0x200] || sites[0x80] {
		t.Fatalf("StaticSites: %v", sites)
	}
	if (&TrapProfile{}).StaticSites() != nil {
		t.Fatalf("empty profile should yield nil StaticSites")
	}
}

func TestMergeTrapProfileAccumulates(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindTrapProfile)
	d1 := &TrapProfile{Sessions: 1, Sites: []TrapSite{{PC: 0x10, MDA: 2, Aligned: 1}}}
	d2 := &TrapProfile{Sessions: 1, Sites: []TrapSite{{PC: 0x10, MDA: 3, Aligned: 0}, {PC: 0x20, MDA: 1, Aligned: 9}}}
	if err := s.MergeTrapProfile(k, d1); err != nil {
		t.Fatalf("merge 1: %v", err)
	}
	if err := s.MergeTrapProfile(k, d2); err != nil {
		t.Fatalf("merge 2: %v", err)
	}
	var got TrapProfile
	if err := s.Load(k, &got); err != nil {
		t.Fatalf("Load merged: %v", err)
	}
	if got.Sessions != 2 || len(got.Sites) != 2 ||
		got.Sites[0] != (TrapSite{PC: 0x10, MDA: 5, Aligned: 1}) ||
		got.Sites[1] != (TrapSite{PC: 0x20, MDA: 1, Aligned: 9}) {
		t.Fatalf("merged profile: %+v", got)
	}
	if st := s.Stats(); st.Merges != 2 {
		t.Fatalf("merge counter: %+v", st)
	}
}

func TestMergeTrapProfileRecoversFromCorruptPrior(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindTrapProfile)
	if err := s.MergeTrapProfile(k, &TrapProfile{Sessions: 1, Sites: []TrapSite{{PC: 0x10, MDA: 2}}}); err != nil {
		t.Fatalf("merge: %v", err)
	}
	corruptOnDisk(t, s, k, func(b []byte) []byte { return b[:len(b)-4] })
	// The corrupt prior quarantines; the merge restarts from the delta.
	if err := s.MergeTrapProfile(k, &TrapProfile{Sessions: 1, Sites: []TrapSite{{PC: 0x20, MDA: 1}}}); err != nil {
		t.Fatalf("merge over corrupt prior: %v", err)
	}
	var got TrapProfile
	if err := s.Load(k, &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Sessions != 1 || len(got.Sites) != 1 || got.Sites[0].PC != 0x20 {
		t.Fatalf("profile after corrupt prior: %+v", got)
	}
	if n := quarantineCount(t, s); n != 1 {
		t.Fatalf("quarantine entries: got %d, want 1", n)
	}
}

// TestConcurrentMergersLoseNothing drives parallel read-modify-write
// merges; the single-writer lock must serialize them so every site
// survives. Run under -race this also proves the counters and lock paths
// are data-race-free.
func TestConcurrentMergersLoseNothing(t *testing.T) {
	s := mustOpen(t)
	k := testKey(KindTrapProfile)
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			delta := &TrapProfile{Sessions: 1, Sites: []TrapSite{{PC: uint32(0x100 + w), MDA: uint64(w + 1)}}}
			if err := s.MergeTrapProfile(k, delta); err != nil {
				t.Errorf("worker %d merge: %v", w, err)
			}
		}(w)
	}
	wg.Wait()
	var got TrapProfile
	if err := s.Load(k, &got); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if got.Sessions != workers || len(got.Sites) != workers {
		t.Fatalf("lost updates: sessions=%d sites=%d want %d each", got.Sessions, len(got.Sites), workers)
	}
	for w := 0; w < workers; w++ {
		i := w
		if got.Sites[i].PC != uint32(0x100+w) || got.Sites[i].MDA != uint64(w+1) {
			t.Fatalf("site %d: %+v", w, got.Sites[i])
		}
	}
}

func TestHashProgramDistinguishesPartBoundaries(t *testing.T) {
	if HashProgram([]byte("ab"), []byte("c")) == HashProgram([]byte("a"), []byte("bc")) {
		t.Fatalf("part boundaries must be length-prefixed into the hash")
	}
	if HashProgram([]byte("ab")) != HashProgram([]byte("ab")) {
		t.Fatalf("hash must be deterministic")
	}
}
