package store

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mdabt/internal/faultinject"
)

// chaosSeed pins every store chaos schedule; failures replay exactly.
const chaosSeed = 20260807

// TestHelperCrashWriter is not a test: it is the child process for
// TestCrashRecoveryAfterKillMidWrite. When STORE_CRASH_DIR is set it
// opens the store there and saves artifacts in a tight loop until it is
// SIGKILLed by the parent.
func TestHelperCrashWriter(t *testing.T) {
	dir := os.Getenv("STORE_CRASH_DIR")
	if dir == "" {
		t.Skip("helper mode only")
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	blob := []byte(strings.Repeat("payload-", 4096))
	for i := 0; ; i++ {
		k := Key{Program: fmt.Sprintf("prog-%d", i%4), Fingerprint: "fp", Kind: KindAOTImage}
		if err := s.Save(k, &testPayload{Name: k.Program, Value: i, Blob: blob}); err != nil {
			t.Fatalf("helper save: %v", err)
		}
	}
}

// TestCrashRecoveryAfterKillMidWrite SIGKILLs a real writer process
// mid-stream, reopens the store, and asserts the crash-safety contract:
// temp debris is swept, every surviving artifact either validates or
// quarantines (never decodes wrong), and the store is immediately
// writable again.
func TestCrashRecoveryAfterKillMidWrite(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process")
	}
	dir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("executable: %v", err)
	}
	cmd := exec.Command(exe, "-test.run", "^TestHelperCrashWriter$")
	cmd.Env = append(os.Environ(), "STORE_CRASH_DIR="+dir)
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}
	// Let the writer make progress, then kill it mid-write.
	time.Sleep(150 * time.Millisecond)
	cmd.Process.Kill()
	cmd.Wait()

	s, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	// No temp debris survives Open.
	filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && strings.HasPrefix(filepath.Base(path), tempPrefix) {
			t.Errorf("temp debris survived reopen: %s", path)
		}
		return nil
	})
	// Every surviving artifact validates or quarantines; none decodes
	// into a wrong payload.
	for i := 0; i < 4; i++ {
		k := Key{Program: fmt.Sprintf("prog-%d", i), Fingerprint: "fp", Kind: KindAOTImage}
		var out testPayload
		err := s.Load(k, &out)
		switch {
		case err == nil:
			if out.Name != k.Program {
				t.Fatalf("artifact %d decoded with foreign payload: %+v", i, out)
			}
		case errors.Is(err, ErrNotFound), errors.Is(err, ErrCorrupt):
			// Clean miss or quarantined torn write: both read as cold.
		default:
			t.Fatalf("artifact %d: unexpected error class: %v", i, err)
		}
	}
	// The store is immediately writable and consistent again.
	k := Key{Program: "prog-0", Fingerprint: "fp", Kind: KindAOTImage}
	if err := s.Save(k, &testPayload{Name: "prog-0", Value: -1}); err != nil {
		t.Fatalf("save after crash recovery: %v", err)
	}
	var out testPayload
	if err := s.Load(k, &out); err != nil || out.Value != -1 {
		t.Fatalf("load after crash recovery: %v (%+v)", err, out)
	}
}

// TestTornFinalFileQuarantinesOnReopen covers the non-atomic-rename /
// power-cut case the kill test cannot force deterministically: a torn
// artifact sitting at a *final* path. The reopened store must quarantine
// it on first read and fall back to a clean miss.
func TestTornFinalFileQuarantinesOnReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpenAt(t, dir)
	k := testKey(KindAOTImage)
	if err := s.Save(k, &testPayload{Value: 7, Blob: []byte(strings.Repeat("x", 256))}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	raw, err := os.ReadFile(s.path(k))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := os.WriteFile(s.path(k), raw[:len(raw)/2], 0o644); err != nil {
		t.Fatalf("tear: %v", err)
	}
	s2 := mustOpenAt(t, dir)
	var out testPayload
	if err := s2.Load(k, &out); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn final file: got %v, want ErrCorrupt", err)
	}
	if err := s2.Load(k, &out); !errors.Is(err, ErrNotFound) {
		t.Fatalf("after quarantine: got %v, want ErrNotFound", err)
	}
	if n := quarantineCount(t, s2); n != 1 {
		t.Fatalf("quarantine entries: got %d, want 1", n)
	}
}

func mustOpenAt(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// TestStoreChaosAllPoints hammers one store with every store.* fault
// point armed on a fixed-seed plan and checks the global robustness
// invariants: a Load either returns a payload that some past Save was
// given (integrity — never a wrong or mixed result) or fails cleanly;
// every corrupt read quarantines; the counters reconcile; and once the
// faults stop, the store recovers to normal service on every key.
func TestStoreChaosAllPoints(t *testing.T) {
	s := mustOpen(t)
	plan := faultinject.New(chaosSeed)
	for _, pt := range []faultinject.Point{
		faultinject.StoreTornWrite, faultinject.StoreBitFlip,
		faultinject.StoreReadError, faultinject.StoreStaleFingerprint,
		faultinject.StoreLockHeld,
	} {
		plan.Rate(pt, 0.2)
	}
	s.SetFaultPlan(plan)

	rng := rand.New(rand.NewSource(chaosSeed))
	keys := make([]Key, 3)
	for i := range keys {
		keys[i] = Key{Program: fmt.Sprintf("prog-%d", i), Fingerprint: "fp", Kind: KindAOTImage}
	}
	// Every value ever handed to Save, per key: a hit must return one of
	// these (a torn/bit-flipped save is *latent*; it reports success but
	// must never be served).
	attempted := make(map[Key]map[int]bool)
	for _, k := range keys {
		attempted[k] = make(map[int]bool)
	}
	const iters = 400
	for i := 0; i < iters; i++ {
		k := keys[rng.Intn(len(keys))]
		if rng.Intn(2) == 0 {
			v := i
			err := s.Save(k, &testPayload{Name: k.Program, Value: v})
			if err == nil {
				attempted[k][v] = true
			} else if !errors.Is(err, ErrBusy) {
				t.Fatalf("iter %d: save error class: %v", i, err)
			}
		} else {
			var out testPayload
			err := s.Load(k, &out)
			switch {
			case err == nil:
				if out.Name != k.Program || !attempted[k][out.Value] {
					t.Fatalf("iter %d: hit returned a value never saved for %v: %+v", i, k, out)
				}
			case errors.Is(err, ErrNotFound), errors.Is(err, ErrCorrupt):
			default:
				// Injected read errors surface as plain I/O errors.
			}
		}
	}
	st := s.Stats()
	if st.Loads != st.Hits+st.Misses+st.Corrupt+st.ReadErrors {
		t.Fatalf("load counters do not reconcile: %+v", st)
	}
	if st.Corrupt != st.Quarantined {
		t.Fatalf("every corrupt read must quarantine: %+v", st)
	}
	if st.Corrupt == 0 || st.LockConflicts == 0 || st.ReadErrors == 0 {
		t.Fatalf("chaos plan never fired some point classes: %+v", st)
	}
	q, err := s.Quarantined()
	if err != nil || uint64(len(q)) != st.Quarantined {
		t.Fatalf("quarantine dir (%d names, err %v) vs counter %d", len(q), err, st.Quarantined)
	}

	// Faults off: full recovery on every key.
	s.SetFaultPlan(nil)
	for i, k := range keys {
		if err := s.Save(k, &testPayload{Name: k.Program, Value: -i}); err != nil {
			t.Fatalf("recovery save %v: %v", k, err)
		}
		var out testPayload
		if err := s.Load(k, &out); err != nil || out.Value != -i {
			t.Fatalf("recovery load %v: %v (%+v)", k, err, out)
		}
	}
}
