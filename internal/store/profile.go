package store

import (
	"errors"
	"sort"
)

// TrapSite is one guest instruction address's aggregated alignment
// history: how many misaligned (trapping) and aligned accesses it
// performed across every contributing session.
type TrapSite struct {
	PC      uint32 `json:"pc"`
	MDA     uint64 `json:"mda"`
	Aligned uint64 `json:"aligned"`
}

// TrapProfile is the KindTrapProfile payload: a program's per-site trap
// history merged across sessions. It is the persistent form of the FX!32
// profile-database idea — sites that trapped for *any* past session
// warm-start the static-profile/SPEH site policy for the next one, so the
// ~1000-cycle discovery traps are paid once per fleet, not once per run.
type TrapProfile struct {
	// Sessions counts how many engine sessions have been merged in.
	Sessions uint64 `json:"sessions"`
	// Sites is the per-PC history, sorted by PC (canonical form; Merge
	// and Add keep it sorted so encoded artifacts are deterministic).
	Sites []TrapSite `json:"sites,omitempty"`
}

// Add folds one site observation into the profile.
func (tp *TrapProfile) Add(pc uint32, mda, aligned uint64) {
	i := sort.Search(len(tp.Sites), func(i int) bool { return tp.Sites[i].PC >= pc })
	if i < len(tp.Sites) && tp.Sites[i].PC == pc {
		tp.Sites[i].MDA += mda
		tp.Sites[i].Aligned += aligned
		return
	}
	tp.Sites = append(tp.Sites, TrapSite{})
	copy(tp.Sites[i+1:], tp.Sites[i:])
	tp.Sites[i] = TrapSite{PC: pc, MDA: mda, Aligned: aligned}
}

// Merge folds other into tp (site counts add; session counts add).
func (tp *TrapProfile) Merge(other *TrapProfile) {
	if other == nil {
		return
	}
	tp.Sessions += other.Sessions
	for _, s := range other.Sites {
		tp.Add(s.PC, s.MDA, s.Aligned)
	}
}

// StaticSites renders the profile as the engine's static-profile site set
// (core.Options.StaticSites): every PC that has ever performed a
// misaligned access maps to true. Returns nil for an empty profile so
// callers can distinguish "no knowledge" from "knowledge: no MDA sites".
func (tp *TrapProfile) StaticSites() map[uint32]bool {
	if tp == nil || len(tp.Sites) == 0 {
		return nil
	}
	out := make(map[uint32]bool)
	for _, s := range tp.Sites {
		if s.MDA > 0 {
			out[s.PC] = true
		}
	}
	return out
}

// MergeTrapProfile folds delta into the stored profile under k with a
// read-modify-write: load the existing artifact (a corrupt one is
// quarantined exactly as in Load and the merge restarts from delta
// alone), merge, and save atomically. The whole cycle runs under the
// single-writer lock so concurrent mergers from other processes serialize
// instead of losing updates.
func (s *Store) MergeTrapProfile(k Key, delta *TrapProfile) error {
	if delta == nil {
		return nil
	}
	release, err := s.lockWriter()
	if err != nil {
		return err
	}
	defer release()
	merged := &TrapProfile{}
	merged.Merge(delta)
	var prior TrapProfile
	err = s.Load(k, &prior)
	switch {
	case err == nil:
		merged.Merge(&prior)
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrCorrupt):
		// First write, or the prior profile was quarantined: start from
		// delta alone. Profile loss degrades warm-start quality, never
		// correctness.
	default:
		return err
	}
	if err := s.saveLocked(k, merged); err != nil {
		return err
	}
	s.merges.Add(1)
	return nil
}
