//go:build !unix

package store

// flockExcl on platforms without flock degrades to the in-process mutex
// alone (which the caller already holds). Cross-process writers on such
// platforms still never corrupt each other — the atomic-rename protocol
// keeps every visible artifact internally consistent — they can merely
// lose a racing profile merge.
func (s *Store) flockExcl() (func(), error) {
	return func() {}, nil
}
