// Package store is the crash-safe persistent artifact store: a
// content-addressed on-disk cache of translation artifacts shared across
// engine sessions and processes (DESIGN.md §15). It holds ahead-of-time
// block schedules (internal/aot images), and aggregated per-site trap
// histories that warm-start profile-driven mechanisms (SPEH,
// static-profile) with the fleet's accumulated knowledge instead of
// re-eating ~1000-cycle traps per site per session — the FX!32
// profile-database idea (paper §1.2) turned into a production service.
//
// Robustness is the headline property: a persistent cache is only
// production-grade if no on-disk state can ever produce a wrong guest
// result. The store's contract is *at worst a cold translation*:
//
//   - Every artifact is wrapped in an envelope carrying the store format
//     version, the full artifact key (program hash, options fingerprint,
//     kind), and a SHA-256 checksum of the payload bytes.
//   - Writes go through temp file + fsync + atomic rename under a
//     single-writer lock (flock on the lock file plus an in-process
//     mutex), so readers never observe a half-written artifact and
//     concurrent writers serialize instead of interleaving.
//   - Reads validate everything before adoption: a truncated or
//     bit-flipped file, a version-skewed envelope, or a foreign key
//     (options-fingerprint mismatch, name collision) moves the entry to
//     the quarantine directory and reports ErrCorrupt; the caller falls
//     back to cold translation through the engine's existing
//     blacklist/degrade ladder.
//   - Leftover temp files from a writer killed mid-write are swept at
//     Open, and a torn file that made it to a final path (non-atomic
//     filesystem, power cut) is caught by the checksum on first read.
//
// Corruption scenarios are exercised deterministically through the
// store.* points in internal/faultinject (torn write, bit flip, read
// error, stale fingerprint, held lock); `make store-chaos` runs the
// corruption/crash-recovery suite under the race detector.
//
// The package deliberately depends only on internal/faultinject, so the
// engine packages (internal/core tests included) can import it without a
// cycle; typed payloads and adapters live with the consumers.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mdabt/internal/faultinject"
)

// FormatVersion is the on-disk envelope format version. A bump invalidates
// every existing artifact: version-skewed entries quarantine on read.
const FormatVersion = 1

// envelopeMagic brands store files so stray JSON is never mistaken for an
// artifact.
const envelopeMagic = "mdabt-store"

// Kind names an artifact type. Each kind lives in its own subdirectory of
// objects/.
type Kind string

// The artifact kinds the DBT persists.
const (
	// KindAOTImage is a serialized internal/aot image: the whole-binary
	// block-entry schedule recovered offline (guest-level facts only, so
	// one image serves every engine configuration).
	KindAOTImage Kind = "aot-image"
	// KindTrapProfile is an aggregated per-site trap history: which guest
	// instruction addresses performed misaligned accesses, with counts,
	// merged across sessions. It warm-starts SPEH/static-profile site
	// policies and is the training substrate for predictive mechanisms.
	KindTrapProfile Kind = "trap-profile"
)

// Key addresses one artifact: the guest program's content hash, the
// engine-options fingerprint it was produced under (core.Options.
// Fingerprint), and the artifact kind. The format version is implicit —
// it is part of the envelope and checked on every read.
type Key struct {
	Program     string
	Fingerprint string
	Kind        Kind
}

// Sentinel errors. Load reports exactly one of them (possibly wrapped with
// detail); any other error is an environmental I/O failure. All of them
// mean the same thing to a caller: run cold.
var (
	// ErrNotFound reports a clean miss: no artifact under the key.
	ErrNotFound = errors.New("store: artifact not found")
	// ErrCorrupt reports a validation failure — truncation, bit flip,
	// version skew, or a foreign/stale key. The entry has been quarantined.
	ErrCorrupt = errors.New("store: artifact corrupt")
	// ErrBusy reports that the single-writer lock could not be taken (a
	// concurrent writer holds it); the save was skipped, nothing written.
	ErrBusy = errors.New("store: writer lock held")
)

// Stats is a point-in-time snapshot of store activity, the store half of
// the observability the serving layer exposes (`GET /statsz`, `dbtrun
// -store` report line).
type Stats struct {
	Saves         uint64 // artifacts written successfully
	SaveErrors    uint64 // writes abandoned on an I/O error
	Loads         uint64 // read attempts
	Hits          uint64 // reads that validated and were adopted
	Misses        uint64 // clean misses (no artifact under the key)
	Corrupt       uint64 // reads that failed validation (any cause)
	VersionSkew   uint64 // ...of which: envelope format version mismatch
	Foreign       uint64 // ...of which: key mismatch (stale fingerprint, collision)
	Quarantined   uint64 // corrupt entries moved to quarantine/
	ReadErrors    uint64 // reads abandoned on an I/O error (no quarantine)
	LockConflicts uint64 // saves skipped because the writer lock was held
	Merges        uint64 // read-modify-write profile merges performed
}

// Store is a crash-safe artifact store rooted at one directory. It is safe
// for concurrent use by multiple goroutines, and for concurrent use by
// multiple processes through the on-disk writer lock + atomic-rename
// protocol.
type Store struct {
	root string

	// mu guards the fault plan and the quarantine sequence. wmu
	// serializes in-process writers; the flock on lockPath() serializes
	// writers across processes. Both are held for the whole of a
	// read-modify-write merge, not just the final write.
	mu   sync.Mutex
	wmu  sync.Mutex
	plan *faultinject.Plan
	qseq uint64 // quarantine file sequence (under mu)

	saves, saveErrors, loads, hits, misses atomic.Uint64
	corrupt, versionSkew, foreign          atomic.Uint64
	quarantined, readErrors, lockConflicts atomic.Uint64
	merges                                 atomic.Uint64
}

// Open creates (if needed) and opens the store rooted at dir. Leftover
// temp files from writers killed mid-write are swept — with the atomic
// rename protocol they were never visible under a final name, so removing
// them loses nothing.
func Open(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, d := range []string{dir, s.objectsDir(), s.quarantineDir()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	if err := s.sweepTemp(); err != nil {
		return nil, err
	}
	return s, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// SetFaultPlan arms the store's deterministic corruption points
// (faultinject.StoreTornWrite and friends). The plan follows the usual
// single-owner contract; nil disables injection.
func (s *Store) SetFaultPlan(p *faultinject.Plan) {
	s.mu.Lock()
	s.plan = p
	s.mu.Unlock()
}

// should consults the fault plan under the store mutex (plans are not
// concurrency-safe and the store is).
func (s *Store) should(pt faultinject.Point) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan.Should(pt)
}

func (s *Store) objectsDir() string    { return filepath.Join(s.root, "objects") }
func (s *Store) quarantineDir() string { return filepath.Join(s.root, "quarantine") }
func (s *Store) lockPath() string      { return filepath.Join(s.root, "store.lock") }

// tempPrefix marks in-flight writes; Open sweeps any leftovers.
const tempPrefix = ".tmp-"

// sweepTemp removes temp debris left by writers killed mid-write.
func (s *Store) sweepTemp() error {
	return filepath.WalkDir(s.objectsDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasPrefix(d.Name(), tempPrefix) {
			if rerr := os.Remove(path); rerr != nil {
				return fmt.Errorf("store: sweep %s: %w", path, rerr)
			}
		}
		return nil
	})
}

// sanitize maps an arbitrary key component onto a safe file-name token.
// The envelope carries the authoritative key, so a (theoretical) collision
// after sanitizing surfaces as a foreign-key validation failure, never as
// a wrong artifact.
func sanitize(part string) string {
	if part == "" {
		return "_"
	}
	var b strings.Builder
	for _, r := range part {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	name := b.String()
	if len(name) > 128 {
		name = name[:128]
	}
	return name
}

// path returns the artifact's final on-disk path.
func (s *Store) path(k Key) string {
	return filepath.Join(s.objectsDir(), sanitize(string(k.Kind)),
		sanitize(k.Program)+"-"+sanitize(k.Fingerprint)+".json")
}

// envelope is the on-disk artifact wrapper. Everything a reader needs to
// validate the artifact travels with it.
type envelope struct {
	Magic       string          `json:"magic"`
	Version     int             `json:"version"`
	Kind        Kind            `json:"kind"`
	Program     string          `json:"program"`
	Fingerprint string          `json:"fingerprint"`
	Checksum    string          `json:"checksum"` // SHA-256 of Payload bytes
	Payload     json.RawMessage `json:"payload"`
}

// Checksum returns the hex SHA-256 of data (exported for tests and the
// aot image checksum, which uses the same construction).
func Checksum(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashProgram derives a content hash for a guest program from its image
// parts (code, shared library, data, entry encoding — whatever identifies
// the program bytes). It is the Key.Program constructor.
func HashProgram(parts ...[]byte) string {
	h := sha256.New()
	for _, p := range parts {
		// Length-prefix each part so ("ab","c") and ("a","bc") differ.
		var n [8]byte
		for i, v := 0, uint64(len(p)); i < 8; i++ {
			n[i] = byte(v >> (8 * i))
		}
		h.Write(n[:])
		h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// lockWriter takes the single-writer lock (in-process mutex plus
// cross-process flock) or reports ErrBusy. The returned release drops
// both.
func (s *Store) lockWriter() (func(), error) {
	if s.should(faultinject.StoreLockHeld) {
		s.lockConflicts.Add(1)
		return nil, ErrBusy
	}
	s.wmu.Lock()
	release, err := s.flockExcl()
	if err != nil {
		s.wmu.Unlock()
		s.lockConflicts.Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBusy, err)
	}
	return func() {
		release()
		s.wmu.Unlock()
	}, nil
}

// Save writes payload (JSON-marshalable) under k using the crash-safe
// protocol: marshal, envelope + checksum, temp file, fsync, atomic rename,
// directory fsync — all under the single-writer lock. On ErrBusy nothing
// was written and the caller simply stays cold; any other error means the
// filesystem refused and the artifact is (still) absent or intact.
func (s *Store) Save(k Key, payload any) error {
	release, err := s.lockWriter()
	if err != nil {
		return err
	}
	defer release()
	return s.saveLocked(k, payload)
}

// saveLocked is Save's body; the caller holds the writer lock.
func (s *Store) saveLocked(k Key, payload any) error {
	raw, err := json.Marshal(payload)
	if err != nil {
		s.saveErrors.Add(1)
		return fmt.Errorf("store: save %s: marshal payload: %w", k.Kind, err)
	}
	env := envelope{
		Magic:       envelopeMagic,
		Version:     FormatVersion,
		Kind:        k.Kind,
		Program:     k.Program,
		Fingerprint: k.Fingerprint,
		Checksum:    Checksum(raw),
		Payload:     raw,
	}
	if s.should(faultinject.StoreStaleFingerprint) {
		// A version-skewed writer stamped someone else's fingerprint: the
		// checksum still matches, only key validation can catch it.
		env.Fingerprint = "stale-" + env.Fingerprint
	}
	// Compact marshal: an indenting encoder would reformat the embedded
	// RawMessage and break the payload checksum on read-back.
	data, err := json.Marshal(&env)
	if err != nil {
		s.saveErrors.Add(1)
		return fmt.Errorf("store: save %s: marshal envelope: %w", k.Kind, err)
	}
	if s.should(faultinject.StoreBitFlip) {
		// Bit rot after the checksum was computed; deterministic position.
		data = append([]byte(nil), data...)
		data[len(data)/2] ^= 0x01
	}
	if s.should(faultinject.StoreTornWrite) {
		// The write tears: only a prefix reaches the final path.
		data = data[:len(data)/2]
	}
	if err := s.writeAtomic(s.path(k), data); err != nil {
		s.saveErrors.Add(1)
		return err
	}
	s.saves.Add(1)
	return nil
}

// writeAtomic lands data at path via temp + fsync + rename + dir fsync.
func (s *Store) writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	tmp, err := os.CreateTemp(dir, tempPrefix+filepath.Base(path)+"-")
	if err != nil {
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: fsync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: rename %s: %w", path, err)
	}
	syncDir(dir) // best effort: rename durability
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
// Failures are ignored — some filesystems refuse directory fsync, and the
// fallback is merely "the artifact may be missing after a crash", which
// reads as a clean cold miss.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

// Load reads and validates the artifact under k into out (a pointer,
// json-unmarshaled). Every validation failure — malformed envelope, wrong
// magic, version skew, foreign key, checksum mismatch, undecodable
// payload — quarantines the file and returns ErrCorrupt (wrapped with the
// cause); a missing artifact returns ErrNotFound; an I/O failure returns
// the underlying error with nothing quarantined. In every non-nil case
// the correct caller behaviour is identical: translate cold.
func (s *Store) Load(k Key, out any) error {
	s.loads.Add(1)
	if s.should(faultinject.StoreReadError) {
		s.readErrors.Add(1)
		return fmt.Errorf("store: load %s: injected read error", k.Kind)
	}
	path := s.path(k)
	raw, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.misses.Add(1)
		return ErrNotFound
	}
	if err != nil {
		s.readErrors.Add(1)
		return fmt.Errorf("store: load %s: %w", k.Kind, err)
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		return s.corruptf(path, k, "malformed envelope (torn write?): %v", err)
	}
	if env.Magic != envelopeMagic {
		return s.corruptf(path, k, "bad magic %q", env.Magic)
	}
	if env.Version != FormatVersion {
		s.versionSkew.Add(1)
		return s.corruptf(path, k, "format version %d, want %d", env.Version, FormatVersion)
	}
	if env.Kind != k.Kind || env.Program != k.Program || env.Fingerprint != k.Fingerprint {
		s.foreign.Add(1)
		return s.corruptf(path, k, "foreign artifact: keyed (%s,%s,%s), asked (%s,%s,%s)",
			env.Kind, env.Program, env.Fingerprint, k.Kind, k.Program, k.Fingerprint)
	}
	if got := Checksum(env.Payload); got != env.Checksum {
		return s.corruptf(path, k, "payload checksum %s, envelope says %s (bit rot?)", got, env.Checksum)
	}
	if err := json.Unmarshal(env.Payload, out); err != nil {
		return s.corruptf(path, k, "payload decode: %v", err)
	}
	s.hits.Add(1)
	return nil
}

// corruptf quarantines the failed artifact and builds the ErrCorrupt.
func (s *Store) corruptf(path string, k Key, format string, args ...any) error {
	s.corrupt.Add(1)
	s.quarantine(path)
	return fmt.Errorf("store: %s %s: %s: %w", k.Kind, filepath.Base(path),
		fmt.Sprintf(format, args...), ErrCorrupt)
}

// quarantine moves a corrupt artifact out of the object tree so the next
// read is a clean miss and the evidence survives for forensics. If the
// move itself fails the file is removed — a corrupt entry must never be
// served twice.
func (s *Store) quarantine(path string) {
	s.mu.Lock()
	s.qseq++
	dst := filepath.Join(s.quarantineDir(),
		fmt.Sprintf("%04d-%s", s.qseq, filepath.Base(path)))
	s.mu.Unlock()
	if err := os.Rename(path, dst); err != nil {
		os.Remove(path)
	}
	s.quarantined.Add(1)
}

// Quarantined lists the quarantine directory (newest last).
func (s *Store) Quarantined() ([]string, error) {
	ents, err := os.ReadDir(s.quarantineDir())
	if err != nil {
		return nil, fmt.Errorf("store: quarantine list: %w", err)
	}
	var out []string
	for _, e := range ents {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out, nil
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	return Stats{
		Saves:         s.saves.Load(),
		SaveErrors:    s.saveErrors.Load(),
		Loads:         s.loads.Load(),
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Corrupt:       s.corrupt.Load(),
		VersionSkew:   s.versionSkew.Load(),
		Foreign:       s.foreign.Load(),
		Quarantined:   s.quarantined.Load(),
		ReadErrors:    s.readErrors.Load(),
		LockConflicts: s.lockConflicts.Load(),
		Merges:        s.merges.Load(),
	}
}
