//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// flockExcl takes the cross-process single-writer lock: a blocking
// exclusive flock on root/store.lock. Concurrent writers in other
// processes serialize here; the in-process mutex (held by the caller)
// serializes goroutines, so the flock never self-deadlocks. The returned
// release function drops the lock.
func (s *Store) flockExcl() (func(), error) {
	f, err := os.OpenFile(s.lockPath(), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: flock: %w", err)
	}
	return func() {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
