module mdabt

go 1.22
